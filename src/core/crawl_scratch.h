#ifndef FLAT_CORE_CRAWL_SCRATCH_H_
#define FLAT_CORE_CRAWL_SCRATCH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/metadata.h"
#include "core/query_control.h"
#include "geometry/box_kernels.h"
#include "storage/io_stats.h"

namespace flat {

/// Reusable scratch state for the crawl BFS (Algorithm 2): an open-addressing
/// visited set keyed on RecordRef::Key(), a flat ring buffer for the BFS
/// queue, and the hit-mask buffer for batched page scans.
///
/// A crawl used to allocate a fresh std::unordered_set and std::deque per
/// query, which dominates per-query CPU once pages are cached. One
/// CrawlScratch per caller (the QueryEngine keeps one per worker) makes the
/// hot path allocation-free: Reset() is O(1) — slots are epoch-stamped, so a
/// new crawl invalidates the old entries by bumping the epoch instead of
/// clearing the table — and capacity only grows to the largest crawl seen.
/// Reusing or not reusing a scratch never changes results — the visited-set
/// and queue semantics are identical to the containers they replace.
/// Not thread-safe; use one instance per thread.
class CrawlScratch {
 public:
  CrawlScratch() : slots_(kInitialSlots), ring_(kInitialRing) {}

  /// Prepares for a new crawl; keeps all capacity.
  void Reset() {
    if (++epoch_ == 0) {
      // Epoch wrapped (after 2^32 resets): restamp everything stale once.
      for (Slot& slot : slots_) slot.epoch = 0;
      epoch_ = 1;
    }
    inserted_ = 0;
    head_ = 0;
    tail_ = 0;
    queued_ = 0;
  }

  /// Inserts `key` into the visited set; true iff it was not yet present.
  bool Insert(uint64_t key) {
    if (inserted_ * 8 >= slots_.size() * 5) GrowSlots();
    const size_t mask = slots_.size() - 1;
    size_t i = Mix(key) & mask;
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) {  // stale or never used: free
        slot.key = key;
        slot.epoch = epoch_;
        ++inserted_;
        return true;
      }
      if (slot.key == key) return false;
      i = (i + 1) & mask;
    }
  }

  void Push(const RecordRef& ref) {
    if (queued_ == ring_.size()) GrowRing();
    ring_[tail_] = ref;
    tail_ = (tail_ + 1) & (ring_.size() - 1);
    ++queued_;
  }

  bool Pop(RecordRef* out) {
    if (queued_ == 0) return false;
    *out = ring_[head_];
    head_ = (head_ + 1) & (ring_.size() - 1);
    --queued_;
    return true;
  }

  /// At least `count` bytes for a batched intersection hit mask
  /// (see IntersectsBatch / IntersectsSoa).
  uint8_t* Hits(size_t count) {
    if (hits_.size() < count) hits_.resize(count);
    return hits_.data();
  }

  /// Second hit-mask buffer for the containment ("covered") gates of the
  /// aggregate-pruned descent, which runs alongside the intersection mask
  /// of the same node (ContainsBatch / ContainsQuantizedSoa) — a separate
  /// buffer so the two masks coexist.
  uint8_t* CoverHits(size_t count) {
    if (cover_hits_.size() < count) cover_hits_.resize(count);
    return cover_hits_.data();
  }

  /// Reusable structure-of-arrays transpose buffer: the crawl re-lays a
  /// visited node page's entry MBRs into SoA lanes once, then gates the
  /// whole fanout with the vector kernels (see geometry/box_kernels.h).
  SoaBoxes& Soa() { return soa_; }

  /// Quantized-lane counterpart for compressed internal pages: the seed
  /// descent transposes a node's u16 slots into these lanes and sweeps them
  /// with the integer kernels (IntersectsQuantizedSoa). Kept separate from
  /// Soa() so a descent over mixed-format levels never thrashes one buffer.
  QuantizedSoa& QuantizedLanes() { return quantized_; }

  /// Binds the fail-soft control the query loops check at their cancellation
  /// points, and the IoStats the executing query charges reads to (for the
  /// budget check). Bound by the dispatch layer for the duration of one
  /// query; BindControl(nullptr, nullptr) unbinds. Reset() deliberately
  /// leaves the binding alone — a query runs many Reset()s (seed probes,
  /// kNN radius doubling) under one control.
  void BindControl(const QueryControl* control, const IoStats* io) {
    control_ = control;
    control_io_ = io;
  }

  /// Cancellation point: throws QueryAbort when the bound control's cancel
  /// token, group, deadline, or I/O budget tripped. With no control bound
  /// (the default) this is a single always-taken predictable branch, so the
  /// seed/crawl hot loops stay bit-identical and effectively free of cost
  /// for uncontrolled queries.
  void CheckControl() const {
    if (control_ != nullptr) ThrowIfStopped(*control_, control_io_);
  }

 private:
  struct Slot {
    uint64_t key = 0;
    uint32_t epoch = 0;  // occupied iff epoch == CrawlScratch::epoch_
  };

  static constexpr size_t kInitialSlots = 1024;  // power of two
  static constexpr size_t kInitialRing = 256;    // power of two

  // splitmix64 finalizer; RecordRef keys are dense in the low bits.
  static uint64_t Mix(uint64_t x) {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void GrowSlots() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{});  // epoch 0 is always stale here
    const size_t mask = slots_.size() - 1;
    for (const Slot& slot : old) {
      if (slot.epoch != epoch_) continue;
      size_t i = Mix(slot.key) & mask;
      while (slots_[i].epoch == epoch_) i = (i + 1) & mask;
      slots_[i] = slot;
    }
  }

  void GrowRing() {
    std::vector<RecordRef> bigger(ring_.size() * 2);
    for (size_t i = 0; i < queued_; ++i) {
      bigger[i] = ring_[(head_ + i) & (ring_.size() - 1)];
    }
    ring_ = std::move(bigger);
    head_ = 0;
    tail_ = queued_;
  }

  std::vector<Slot> slots_;  // visited set, linear probing
  uint32_t epoch_ = 1;       // zero-initialized slots start out stale
  size_t inserted_ = 0;
  std::vector<RecordRef> ring_;  // BFS queue
  size_t head_ = 0;
  size_t tail_ = 0;
  size_t queued_ = 0;
  std::vector<uint8_t> hits_;
  std::vector<uint8_t> cover_hits_;
  SoaBoxes soa_;
  QuantizedSoa quantized_;
  const QueryControl* control_ = nullptr;  // null = uncontrolled (hot path)
  const IoStats* control_io_ = nullptr;
};

}  // namespace flat

#endif  // FLAT_CORE_CRAWL_SCRATCH_H_
