#ifndef FLAT_CORE_FLAT_INDEX_H_
#define FLAT_CORE_FLAT_INDEX_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/crawl_scratch.h"
#include "core/metadata.h"
#include "core/partitioner.h"
#include "geometry/aabb.h"
#include "rtree/aggregates.h"
#include "rtree/entry.h"
#include "storage/page_cache.h"
#include "storage/page_file.h"
#include "storage/page_store.h"

namespace flat {

/// FLAT: the paper's two-phase index for dense spatial data.
///
/// Usage:
///
///   PageFile file;                       // simulated disk
///   FlatIndex index = FlatIndex::Build(&file, elements);
///   IoStats stats;
///   BufferPool pool(&file, &stats);
///   std::vector<uint64_t> result;
///   index.RangeQuery(&pool, query_box, &result);
///
/// Build bulkloads (the data sets "change only slowly, if at all"; no updates
/// by design — Section I). Queries run the seed phase (find one intersecting
/// page through the seed R-tree) followed by the crawl phase (BFS over
/// neighbor pointers, Algorithm 2); their I/O is charged to the BufferPool's
/// IoStats under the kSeedInternal / kSeedLeaf / kObject categories,
/// reproducing the paper's Figure 14/18 breakdowns.
///
/// Thread-safety: a built (or attached) FlatIndex is immutable, and every
/// query entry point is const and touches no shared mutable state — queries
/// may run concurrently from any number of threads provided each thread
/// uses its own PageCache (and its own CrawlScratch, when passed). That is
/// exactly how the QueryEngine parallelizes batches. Build/Attach/move must
/// not race with queries on the same object.
///
/// Fail-soft execution: when the caller's CrawlScratch has a QueryControl
/// bound (CrawlScratch::BindControl — the QueryEngine dispatch layer does
/// this), the seed descent and the crawl BFS check it once per frontier pop
/// and per object-page probe, throwing QueryAbort with the typed status when
/// a deadline/cancel/budget trips. With no control bound the checks are one
/// predictable branch each and results are bit-identical to builds that
/// predate them. The storage backend may also throw std::runtime_error on
/// unrecoverable I/O failure; the dispatch layer converts either into
/// QueryResult::status (core/query_control.h, engine/query_engine.h).
class FlatIndex {
 public:
  /// Timing and layout information captured during Build, matching the
  /// phases reported in Figure 10 and the size breakdown of Figure 11.
  struct BuildStats {
    double partition_seconds = 0.0;  ///< STR sort + tile ("Partitioning").
    double neighbor_seconds = 0.0;   ///< temp R-tree + joins ("Finding
                                     ///< Neighbors").
    double write_seconds = 0.0;      ///< object pages + seed tree.
    size_t partitions = 0;
    size_t object_pages = 0;
    size_t seed_leaf_pages = 0;
    size_t seed_internal_pages = 0;
    uint64_t neighbor_pointers = 0;
    uint64_t metadata_bytes = 0;  ///< serialized record bytes (excl. padding).
    int seed_height = 0;          ///< seed tree levels incl. leaf level.
  };

  /// Per-partition figures kept in memory for the Figure 20/21 analyses.
  struct PartitionProfile {
    double partition_volume = 0.0;
    uint32_t neighbor_count = 0;
  };

  /// Which MBR gates neighbor expansion during the crawl. The paper proves
  /// kPartitionMbr is required for correctness (Figures 8/9); kPageMbr exists
  /// only for the `bench_ablation_crawl_guard` experiment demonstrating the
  /// failure.
  enum class CrawlGuard { kPartitionMbr, kPageMbr };

  /// Options for the build pipeline.
  struct BuildOptions {
    /// Worker threads: 1 (default) builds serially on the calling thread,
    /// 0 uses std::thread::hardware_concurrency(). Every thread count
    /// produces a byte-identical PageFile — the sorting passes use a strict
    /// total order and all page writes happen at deterministic PageIds
    /// (verified by tests/parallel_build_test.cc).
    size_t num_threads = 1;

    /// Build the seed tree's internal pages in the compressed format
    /// (rtree/node.h): child MBRs quantized to 16-bit fixed point relative
    /// to the node's exact box, ~3.45x the fanout of exact pages, so the
    /// seed descent reads fewer and shallower internal pages. Query results
    /// are bit-identical to an exact build — quantization rounds outward,
    /// spurious descents are resolved by the exact record and element gates
    /// (tests/compressed_index_test.cc). Off by default: exact pages,
    /// byte-identical to builds that predate the option. Object pages and
    /// seed leaves are unaffected either way.
    bool compressed_seed_pages = false;

    /// Compute per-subtree aggregates (element and page counts per child
    /// pointer — rtree/aggregates.h) during the build and attach them to
    /// the returned index, enabling the covered-node pruning fast paths:
    /// RangeCount answers fully-covered subtrees from the stored counts in
    /// O(height) page reads, and RangeQueryViaSeedScan batch-copies
    /// fully-covered object pages without per-element gates. The aggregates
    /// live in a sidecar keyed by (page, slot): the PageFile bytes are
    /// identical with or without this option, and pruned query results and
    /// counts are bit-identical to the unpruned paths
    /// (tests/aggregate_index_test.cc). Silently skipped — the index then
    /// reports has_aggregates() == false and every query runs the exact
    /// paths — when any element box is empty or non-finite, since such
    /// elements are invisible to the intersection gates but would be
    /// included in stored counts. Off by default.
    bool aggregate_counts = false;
  };

  /// An unbuilt index: empty() is true, queries have no PageFile to read
  /// from and must not be issued (engines treat such an index as "no data").
  FlatIndex() = default;

  /// Bulkloads `elements` into a fresh FLAT index appended to `file`.
  /// Elements are reordered (STR) in the process.
  static FlatIndex Build(PageFile* file, std::vector<RTreeEntry> elements,
                         BuildStats* stats = nullptr);

  /// As above, with the parallel build pipeline: STR sorting passes, the
  /// neighbor join, and page serialization all fan out over
  /// `options.num_threads` workers, with the per-phase BuildStats timings
  /// still measured at the (sequential) phase boundaries.
  static FlatIndex Build(PageFile* file, std::vector<RTreeEntry> elements,
                         const BuildOptions& options,
                         BuildStats* stats = nullptr);

  /// True when the index holds no elements (never built, or built empty).
  bool empty() const { return seed_root_ == kInvalidPageId; }

  /// Appends the ids of all elements whose MBR intersects `query`.
  ///
  /// `scratch` (optional, here and on every other query entry point) is the
  /// caller-owned crawl scratch: pass the same instance across queries — one
  /// per thread — to make the crawl hot path allocation-free. nullptr uses a
  /// throwaway scratch; results and I/O are identical either way.
  void RangeQuery(PageCache* pool, const Aabb& query,
                  std::vector<uint64_t>* out,
                  CrawlGuard guard = CrawlGuard::kPartitionMbr) const;
  void RangeQuery(PageCache* pool, const Aabb& query,
                  std::vector<uint64_t>* out, CrawlScratch* scratch,
                  CrawlGuard guard = CrawlGuard::kPartitionMbr) const;

  /// Number of elements RangeQuery would return, without materializing the
  /// id vector. Without aggregates the crawl tallies the batched gate tests
  /// directly and reads the same pages as RangeQuery, so IoStats match it
  /// exactly. With aggregates attached (BuildOptions::aggregate_counts /
  /// AttachAggregates) the count descends the seed tree instead: a child
  /// whose box is fully covered by the query contributes its stored subtree
  /// count with zero page reads below it, and only boundary subtrees are
  /// descended and gated exactly — same count, far fewer reads on large
  /// query boxes.
  size_t RangeCount(PageCache* pool, const Aabb& query,
                    CrawlScratch* scratch = nullptr) const;

  /// RangeCount that *adds into* `*acc` as matches accumulate, rather than
  /// returning the tally at the end. The engine dispatch layer counts
  /// through this so a query stopped mid-flight by its QueryControl keeps
  /// the elements counted so far as a valid partial result (consistent with
  /// partial RangeQuery keeping its ids — see core/query_control.h).
  void RangeCountInto(PageCache* pool, const Aabb& query, uint64_t* acc,
                      CrawlScratch* scratch = nullptr) const;

  /// Appends the ids of all elements whose MBR intersects the closed ball
  /// around `center` — the structural-neighborhood primitive of Section
  /// III-A ("all elements within a distance of 5 µm"). Seeds and crawls
  /// with the ball's bounding box, filtering elements by exact
  /// box-to-sphere distance.
  void SphereQuery(PageCache* pool, const Vec3& center, double radius,
                   std::vector<uint64_t>* out) const;
  void SphereQuery(PageCache* pool, const Vec3& center, double radius,
                   std::vector<uint64_t>* out, CrawlScratch* scratch) const;

  /// The ids of (at least) the `k` elements whose MBRs are closest to
  /// `center`, nearest first. Implemented as iterative-deepening sphere
  /// crawls: start from the radius of the seed partition and double until k
  /// elements are inside — every probe is a cheap seed+crawl, so the cost
  /// stays proportional to the neighborhood size, in the spirit of the
  /// paper's incremental structural-neighborhood use case.
  std::vector<uint64_t> KnnQuery(PageCache* pool, const Vec3& center,
                                 size_t k) const;
  std::vector<uint64_t> KnnQuery(PageCache* pool, const Vec3& center, size_t k,
                                 CrawlScratch* scratch) const;

  /// Rebuilds an index over `elements` appended to `file`. The paper's
  /// update story (Section IV): data changes arrive "in batches" and
  /// "reindexing is more efficient" than incremental maintenance — this is
  /// that operation, as a named convenience.
  static FlatIndex Rebuild(PageFile* file, std::vector<RTreeEntry> elements,
                           BuildStats* stats = nullptr) {
    return Build(file, std::move(elements), stats);
  }
  static FlatIndex Rebuild(PageFile* file, std::vector<RTreeEntry> elements,
                           const BuildOptions& options,
                           BuildStats* stats = nullptr) {
    return Build(file, std::move(elements), options, stats);
  }

  /// Compact handle describing a built index inside its PageFile; together
  /// with the PageFile contents this is everything needed to re-attach the
  /// index (see storage/persistence.h).
  struct Descriptor {
    PageId seed_root = kInvalidPageId;
    bool root_is_leaf = false;
    int seed_height = 0;
  };

  /// The handle to persist alongside the PageFile (see Attach).
  Descriptor descriptor() const {
    return Descriptor{seed_root_, root_is_leaf_, seed_height_};
  }

  /// Re-attaches an index previously built into `file` — any PageStore
  /// holding the same bytes: an in-memory PageFile (e.g. after
  /// LoadPageFile) or a DiskPageFile opened over the serialized form. Build
  /// statistics and partition profiles are not persisted; queries behave
  /// identically regardless of backend.
  static FlatIndex Attach(const PageStore* file,
                          const Descriptor& descriptor) {
    FlatIndex index;
    index.file_ = file;
    index.seed_root_ = descriptor.seed_root;
    index.root_is_leaf_ = descriptor.root_is_leaf;
    index.seed_height_ = descriptor.seed_height;
    return index;
  }

  /// Seed phase only: finds one metadata record whose object page contains an
  /// element intersecting `query` (Section V-B.1), or nullopt when the query
  /// region is empty of data.
  std::optional<RecordRef> Seed(PageCache* pool, const Aabb& query) const;

  /// Crawl phase only (Algorithm 2), starting BFS at `start`. Exposed so
  /// tests can verify seed-choice independence: any valid start inside the
  /// query yields the same result set.
  void Crawl(PageCache* pool, const Aabb& query, RecordRef start,
             std::vector<uint64_t>* out,
             CrawlGuard guard = CrawlGuard::kPartitionMbr,
             CrawlScratch* scratch = nullptr) const;

  /// All record addresses whose page MBR intersects `query`; test hook for
  /// the seed-independence property (walks without charging I/O).
  std::vector<RecordRef> FindAllCandidateRecords(const Aabb& query) const;

  /// Ablation baseline ("why crawl?"): answers the range query by a plain
  /// hierarchical traversal of the seed tree — descend every subtree whose
  /// MBR intersects the query, read each candidate record's object page —
  /// i.e., use the seed structure as an ordinary R-Tree and ignore the
  /// neighbor pointers. Charged through `pool` like RangeQuery, so
  /// `bench_ablation_seed_strategy` can compare the two execution plans.
  void RangeQueryViaSeedScan(PageCache* pool, const Aabb& query,
                             std::vector<uint64_t>* out,
                             CrawlScratch* scratch = nullptr) const;

  /// Timings and layout figures of the Build that produced this index
  /// (zeroed for attached indexes — they are not persisted).
  const BuildStats& build_stats() const { return build_stats_; }

  /// Per-partition volume/neighbor figures for the Figure 20/21 analyses
  /// (empty for attached indexes).
  const std::vector<PartitionProfile>& partition_profiles() const {
    return partition_profiles_;
  }

  /// Height of the seed tree (levels including the metadata leaf level).
  int seed_height() const { return seed_height_; }

  /// The PageStore this index reads from (nullptr before Build/Attach).
  /// Query engines use it to construct per-worker page caches.
  const PageStore* file() const { return file_; }

  /// Attaches a loaded aggregate sidecar (rtree/aggregates.h) to an
  /// attached index, enabling the covered-node pruning fast paths exactly
  /// as BuildOptions::aggregate_counts does at build time. Shared because
  /// sharded snapshots hand the same immutable index (and sidecar) to many
  /// workers. Passing nullptr detaches.
  void AttachAggregates(std::shared_ptr<const SeedAggregates> aggregates) {
    aggregates_ = std::move(aggregates);
  }

  /// True when subtree aggregates are attached (pruning paths active).
  bool has_aggregates() const { return aggregates_ != nullptr; }

  /// The attached sidecar, or nullptr (tests and persistence use this).
  const std::shared_ptr<const SeedAggregates>& aggregates() const {
    return aggregates_;
  }

 private:
  // The seed and crawl phases are generic over how elements are matched
  // (box intersection, sphere distance, ...) and what happens per object
  // page (append ids, count, ...). Templates keep the hot loops free of
  // std::function indirection; all instantiations live in flat_index.cc.

  // Scans one metadata record during the seed phase; returns true on hit.
  template <typename Accept>
  bool ProbeRecord(PageCache* pool, const MetadataRecordView& record,
                   const Accept& accept) const;

  // Generalized seed phase: finds a record whose object page holds an
  // accepted element, pruning by `gate` (the query's bounding box). Uses
  // `scratch`'s hit buffer for the batched node gates when given (keeping
  // the seed phase allocation-free); nullptr falls back to a local buffer.
  template <typename Accept>
  std::optional<RecordRef> SeedWhere(PageCache* pool, const Aabb& gate,
                                     const Accept& accept,
                                     CrawlScratch* scratch = nullptr) const;

  // Generalized crawl (Algorithm 2): BFS over neighbor pointers, calling
  // scan(page_data, scratch) for every object page whose page MBR passes the
  // query gate. Uses `scratch` when given, else a throwaway.
  template <typename ScanPage>
  void CrawlPages(PageCache* pool, const Aabb& gate, RecordRef start,
                  CrawlGuard guard, CrawlScratch* scratch,
                  const ScanPage& scan) const;

  // Aggregate-pruned counting plan (only reachable with aggregates_ set):
  // descends the seed tree, adding stored subtree counts for fully-covered
  // children and gating only boundary pages exactly.
  void RangeCountViaAggregates(PageCache* pool, const Aabb& query,
                               uint64_t* acc, CrawlScratch* scratch) const;

  const PageStore* file_ = nullptr;
  PageId seed_root_ = kInvalidPageId;
  bool root_is_leaf_ = false;  // single seed-leaf tree, no internal nodes
  int seed_height_ = 0;
  BuildStats build_stats_;
  std::vector<PartitionProfile> partition_profiles_;
  std::shared_ptr<const SeedAggregates> aggregates_;  // null = no pruning
};

}  // namespace flat

#endif  // FLAT_CORE_FLAT_INDEX_H_
