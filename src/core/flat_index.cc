#include "core/flat_index.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <memory>
#include <optional>
#include <stdexcept>

#include "geometry/box_kernels.h"
#include "parallel/thread_pool.h"
#include "rtree/node.h"
#include "rtree/pack.h"

namespace flat {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Aabb BoundsOf(const std::vector<RTreeEntry>& entries) {
  Aabb bounds;
  for (const RTreeEntry& e : entries) bounds.ExpandToInclude(e.box);
  return bounds;
}

// Aggregate pruning rests on "query covers the subtree MBR => every element
// below matches", which only holds when every element box is non-empty and
// finite: an empty or NaN box is invisible to the intersection gates yet
// would be included in stored counts. One such element disables aggregates
// for the whole build (the exact paths remain correct for it).
bool AllBoxesAggregatable(const std::vector<RTreeEntry>& elements) {
  for (const RTreeEntry& e : elements) {
    for (int axis = 0; axis < 3; ++axis) {
      const double lo = e.box.lo()[axis];
      const double hi = e.box.hi()[axis];
      if (!(lo <= hi) || !std::isfinite(lo) || !std::isfinite(hi)) {
        return false;
      }
    }
  }
  return true;
}

/// One internal seed node, gated against `gate` whichever format the page
/// carries (the header's format byte dispatches). Exact pages run the
/// batched double-precision sweep; compressed pages quantize the query once
/// into the node's grid and sweep the u16 slots through the scratch's
/// quantized SoA lanes. Quantized hits are a superset of the exact hits
/// (outward rounding, geometry/box_kernels.h): a spurious child costs one
/// extra descent and is resolved by the exact gates at the seed-leaf /
/// object level; a miss is impossible, so results never change.
class InternalNodeGate {
 public:
  /// `want_covered` additionally computes a containment mask (Covered):
  /// exact pages run the flipped-predicate ContainsBatch, compressed pages
  /// certify slots against the conservatively dequantized cover thresholds
  /// (QuantizeCoverQuery) — covered can under-trigger near the query faces
  /// on quantized pages but never over-trigger, so a covered verdict always
  /// licenses taking the child's stored aggregate instead of descending.
  InternalNodeGate(const char* data, const Aabb& gate, CrawlScratch* scratch,
                   bool want_covered = false)
      : data_(data), node_(data) {
    const uint16_t n = node_.count();
    uint8_t* hits;
    if (node_.format() == NodeFormat::kQuantized) {
      const CompressedNodeView cnode(data);
      QuantizedSoa& soa = scratch->QuantizedLanes();
      soa.Assign(cnode.slots(), sizeof(QuantizedSlot), n);
      hits = scratch->Hits(soa.padded_count());
      IntersectsQuantizedSoa(soa, QuantizeQuery(cnode.node_box(), gate),
                             hits);
      if (want_covered) {
        uint8_t* cover = scratch->CoverHits(soa.padded_count());
        ContainsQuantizedSoa(soa, QuantizeCoverQuery(cnode.node_box(), gate),
                             cover);
        cover_ = cover;
      }
    } else {
      hits = scratch->Hits(n);
      IntersectsBatch(data + kNodeHeaderSize, sizeof(RTreeEntry), n, gate,
                      hits);
      if (want_covered) {
        uint8_t* cover = scratch->CoverHits(n);
        ContainsBatch(data + kNodeHeaderSize, sizeof(RTreeEntry), n, gate,
                      cover);
        cover_ = cover;
      }
    }
    hits_ = hits;
  }

  uint16_t count() const { return node_.count(); }
  uint8_t level() const { return node_.level(); }
  bool Hit(uint16_t i) const { return hits_[i] != 0; }
  bool Covered(uint16_t i) const { return cover_[i] != 0; }

  PageId ChildAt(uint16_t i) const {
    if (node_.format() == NodeFormat::kQuantized) {
      uint32_t child;
      std::memcpy(&child,
                  data_ + kQuantizedSlotsOffset + i * sizeof(QuantizedSlot) +
                      offsetof(QuantizedSlot, child),
                  sizeof(child));
      return child;
    }
    return static_cast<PageId>(node_.IdAt(i));
  }

 private:
  const char* data_;
  NodeView node_;
  const uint8_t* hits_;
  const uint8_t* cover_ = nullptr;  // set iff want_covered
};

}  // namespace

FlatIndex FlatIndex::Build(PageFile* file, std::vector<RTreeEntry> elements,
                           BuildStats* out_stats) {
  return Build(file, std::move(elements), BuildOptions{}, out_stats);
}

FlatIndex FlatIndex::Build(PageFile* file, std::vector<RTreeEntry> elements,
                           const BuildOptions& options,
                           BuildStats* out_stats) {
  FlatIndex index;
  index.file_ = file;
  BuildStats stats;
  if (elements.empty()) {
    index.build_stats_ = stats;
    if (out_stats != nullptr) *out_stats = stats;
    return index;
  }

  // num_threads == 1 keeps the whole build on the calling thread; any other
  // value spins up a pool shared by all three phases. Either way the
  // resulting PageFile is byte-identical (see BuildOptions).
  std::optional<ThreadPool> owned_pool;
  ThreadPool* pool = nullptr;
  if (options.num_threads != 1) {
    owned_pool.emplace(options.num_threads);
    pool = &*owned_pool;
  }

  const uint32_t page_capacity = NodeCapacity(file->page_size());

  const bool aggregate_counts =
      options.aggregate_counts && AllBoxesAggregatable(elements);
  const uint64_t total_elements = elements.size();

  // Phase 1: STR partitioning (Algorithm 1, sorting passes).
  auto t_partition = Clock::now();
  const Aabb universe = BoundsOf(elements);
  std::vector<PartitionInfo> partitions =
      StrPartition(&elements, page_capacity, universe, pool);
  stats.partition_seconds = SecondsSince(t_partition);

  // Phase 2: neighborhood computation (grid intersection join).
  auto t_neighbor = Clock::now();
  ComputeNeighbors(&partitions, pool);
  stats.neighbor_seconds = SecondsSince(t_neighbor);
  stats.partitions = partitions.size();
  stats.neighbor_pointers = TotalNeighborPointers(partitions);

  // Phase 3: materialize object pages and the seed tree. PageIds are
  // allocated serially (deterministic layout); filling the pages fans out —
  // every worker writes only its own pages.
  auto t_write = Clock::now();

  // Object pages: one per partition, elements in STR order.
  std::vector<PageId> object_pages(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    object_pages[i] = file->Allocate(PageCategory::kObject);
  }
  ParallelFor(pool, partitions.size(), /*grain=*/0, [&](size_t, size_t i) {
    const PartitionInfo& p = partitions[i];
    NodeWriter writer(file->MutableData(object_pages[i]), file->page_size());
    writer.Init(/*level=*/0);
    for (uint32_t j = 0; j < p.count; ++j) {
      writer.Append(elements[p.first + j]);
    }
  });
  stats.object_pages = partitions.size();

  // Assign each metadata record to a seed-leaf page. Records are indexed in
  // the seed tree under their page MBR, and "storing the records in the
  // leafs of the seed tree (an R-Tree) ensures that spatially close records
  // are stored on the same leaf page" (Section V-B.2): we therefore re-tile
  // the records with STR at *leaf granularity* (a 3-D blob of ~a dozen
  // records per leaf) instead of reusing the 1-D object-page run order —
  // this is what keeps the crawl's metadata reads local.
  uint64_t total_footprint = 0;
  for (const PartitionInfo& p : partitions) {
    const size_t footprint = RecordFootprint(p.neighbors.size());
    if (kSeedLeafHeaderSize + footprint > file->page_size()) {
      throw std::runtime_error(
          "FlatIndex::Build: metadata record exceeds page size; increase the "
          "page size or reduce data-set degeneracy (neighbor fan-out)");
    }
    total_footprint += footprint;
  }
  const uint32_t est_records_per_leaf = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             (file->page_size() - kSeedLeafHeaderSize) /
             (total_footprint / partitions.size() + 1)));
  std::vector<RTreeEntry> record_order(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    record_order[i] = RTreeEntry{partitions[i].page_mbr, i};
  }
  StrOrder(&record_order, est_records_per_leaf, pool);

  std::vector<std::vector<uint32_t>> leaf_members;
  std::vector<RecordRef> refs(partitions.size());
  size_t used = kSeedLeafHeaderSize;
  for (const RTreeEntry& rec : record_order) {
    const uint32_t pi = static_cast<uint32_t>(rec.id);
    const size_t footprint = RecordFootprint(partitions[pi].neighbors.size());
    if (leaf_members.empty() || used + footprint > file->page_size()) {
      leaf_members.emplace_back();
      used = kSeedLeafHeaderSize;
    }
    refs[pi].slot = static_cast<uint16_t>(leaf_members.back().size());
    refs[pi].page = static_cast<PageId>(leaf_members.size() - 1);  // leaf idx
    leaf_members.back().push_back(pi);
    used += footprint;
    stats.metadata_bytes += kRecordFixedSize +
                            partitions[pi].neighbors.size() * kNeighborRefSize;
  }

  // Allocate leaves, then rewrite the provisional leaf indexes in refs into
  // real PageIds. The packed 4-byte neighbor-pointer format caps leaf page
  // ids at 2^20 and slots at 2^12 (metadata.h); enforce that in release
  // builds too.
  std::vector<PageId> leaf_ids(leaf_members.size());
  for (size_t l = 0; l < leaf_members.size(); ++l) {
    leaf_ids[l] = file->Allocate(PageCategory::kSeedLeaf);
  }
  if (!leaf_ids.empty() && leaf_ids.back() >= kMaxSeedLeafPages) {
    throw std::runtime_error(
        "FlatIndex::Build: seed-leaf PageId exceeds the packed neighbor-"
        "pointer range (2^20 pages); use a larger page size or shard the "
        "data set");
  }
  for (RecordRef& ref : refs) {
    if (ref.slot >= kMaxRecordsPerLeaf) {
      throw std::runtime_error(
          "FlatIndex::Build: record slot exceeds the packed neighbor-"
          "pointer range (2^12 records per leaf)");
    }
    ref.page = leaf_ids[ref.page];
  }

  // Serialize the leaves with fully-resolved neighbor pointers; leaves are
  // disjoint pages, so they serialize in parallel.
  std::vector<RTreeEntry> leaf_entries(leaf_members.size());
  ParallelFor(pool, leaf_members.size(), /*grain=*/0, [&](size_t, size_t l) {
    std::vector<MetadataRecordDraft> drafts;
    drafts.reserve(leaf_members[l].size());
    Aabb leaf_bounds;
    for (uint32_t pi : leaf_members[l]) {
      const PartitionInfo& p = partitions[pi];
      MetadataRecordDraft draft;
      draft.page_mbr = p.page_mbr;
      draft.partition_mbr = p.partition_mbr;
      draft.object_page = object_pages[pi];
      draft.neighbors.reserve(p.neighbors.size());
      for (uint32_t ni : p.neighbors) draft.neighbors.push_back(refs[ni]);
      drafts.push_back(std::move(draft));
      // The record is indexed in the seed tree under its page MBR key
      // (Section V-B.2).
      leaf_bounds.ExpandToInclude(p.page_mbr);
    }
    WriteSeedLeaf(file->MutableData(leaf_ids[l]), file->page_size(), drafts);
    leaf_entries[l] = RTreeEntry{leaf_bounds, leaf_ids[l]};
  });
  stats.seed_leaf_pages = leaf_members.size();

  // Seed the aggregate builder with the record-level entries (one object
  // page each) and the per-leaf totals; BuildUpperLevels rolls them up
  // through the internal levels. Serial and in deterministic leaf order, so
  // the sidecar is byte-identical across thread counts like the pages.
  std::optional<AggregateBuilder> agg_builder;
  if (aggregate_counts) {
    agg_builder.emplace();
    for (size_t l = 0; l < leaf_members.size(); ++l) {
      AggEntry leaf_total{0, 1};  // the seed-leaf page itself
      for (size_t slot = 0; slot < leaf_members[l].size(); ++slot) {
        const AggEntry record{partitions[leaf_members[l][slot]].count, 1};
        agg_builder->RecordSlot(leaf_ids[l], static_cast<uint16_t>(slot),
                                record);
        leaf_total.elements += record.elements;
        leaf_total.pages += record.pages;
      }
      agg_builder->SetPageTotal(leaf_ids[l], leaf_total);
    }
  }

  // Internal levels of the seed tree, exact or compressed per the build
  // options (the two layouts differ only in these kSeedInternal pages —
  // object pages and seed leaves above are byte-identical either way).
  if (leaf_entries.size() == 1) {
    index.seed_root_ = leaf_ids.front();
    index.root_is_leaf_ = true;
    index.seed_height_ = 1;
  } else {
    const size_t pages_before = file->page_count();
    const NodeFormat seed_format = options.compressed_seed_pages
                                       ? NodeFormat::kQuantized
                                       : NodeFormat::kExact;
    RTree upper = BuildUpperLevels(
        file, leaf_entries, /*level=*/1, LevelOrder::kStr,
        PageCategory::kSeedInternal, pool, seed_format,
        agg_builder.has_value() ? &*agg_builder : nullptr);
    index.seed_root_ = upper.root();
    index.root_is_leaf_ = false;
    index.seed_height_ = upper.height();
    stats.seed_internal_pages = file->page_count() - pages_before;
  }
  stats.seed_height = index.seed_height_;
  stats.write_seconds = SecondsSince(t_write);

  if (agg_builder.has_value()) {
    index.aggregates_ = std::make_shared<const SeedAggregates>(
        agg_builder->Finish(total_elements));
  }

  index.partition_profiles_.reserve(partitions.size());
  for (const PartitionInfo& p : partitions) {
    index.partition_profiles_.push_back(PartitionProfile{
        p.partition_mbr.Volume(),
        static_cast<uint32_t>(p.neighbors.size())});
  }

  index.build_stats_ = stats;
  if (out_stats != nullptr) *out_stats = stats;
  return index;
}

template <typename Accept>
bool FlatIndex::ProbeRecord(PageCache* pool, const MetadataRecordView& record,
                            const Accept& accept) const {
  const char* data = pool->Read(record.object_page());
  NodeView elements(data);
  for (uint16_t i = 0; i < elements.count(); ++i) {
    if (accept(elements.BoxAt(i))) return true;
  }
  return false;
}

template <typename Accept>
std::optional<RecordRef> FlatIndex::SeedWhere(PageCache* pool,
                                              const Aabb& gate,
                                              const Accept& accept,
                                              CrawlScratch* scratch) const {
  if (empty() || gate.IsEmpty()) return std::nullopt;

  struct Frame {
    PageId page;
    bool is_leaf;
  };
  // The batched node gates need the scratch's hit/lane buffers; materialize
  // a throwaway when the caller brought none (results and I/O identical).
  std::optional<CrawlScratch> throwaway;
  CrawlScratch* s = scratch != nullptr ? scratch : &throwaway.emplace();
  std::vector<Frame> stack = {{seed_root_, root_is_leaf_}};
  while (!stack.empty()) {
    // Cancellation point: one pop reads at most one node page before the
    // next check (plus per-record probes below, each checked too).
    s->CheckControl();
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.is_leaf) {
      SeedLeafView leaf(pool->Read(frame.page));
      for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
        MetadataRecordView record = leaf.RecordAt(slot);
        if (!record.page_mbr().Intersects(gate)) continue;
        s->CheckControl();  // each probe below reads one object page
        if (ProbeRecord(pool, record, accept)) {
          return RecordRef{frame.page, slot};
        }
      }
      continue;
    }
    // Gate the whole fanout in one batched, format-dispatching sweep (same
    // push order as the former per-entry loop, so the descent — and thus
    // the returned seed — is unchanged on exact pages).
    const InternalNodeGate gated(pool->Read(frame.page), gate, s);
    const bool children_are_leaves = gated.level() == 1;
    for (int i = gated.count() - 1; i >= 0; --i) {
      if (gated.Hit(static_cast<uint16_t>(i))) {
        stack.push_back(Frame{gated.ChildAt(static_cast<uint16_t>(i)),
                              children_are_leaves});
      }
    }
  }
  return std::nullopt;
}

template <typename ScanPage>
void FlatIndex::CrawlPages(PageCache* pool, const Aabb& gate_box,
                           RecordRef start, CrawlGuard guard,
                           CrawlScratch* scratch, const ScanPage& scan) const {
  if (empty() || gate_box.IsEmpty() || !start.valid()) return;

  // Only materialize the fallback when the caller brought no scratch; a
  // caller-owned scratch keeps this path allocation-free.
  std::optional<CrawlScratch> throwaway;
  CrawlScratch* s = scratch != nullptr ? scratch : &throwaway.emplace();
  s->Reset();
  s->Push(start);  // breadth-first (Algorithm 2)
  s->Insert(start.Key());

  // Hoisted: prefetching is a per-query setting, so the hot loop only pays
  // for hint generation when a depth is actually configured.
  const bool hint = pool->prefetch_enabled();

  RecordRef ref;
  while (s->Pop(&ref)) {
    // Cancellation point, once per BFS frontier pop: a pop reads at most two
    // pages (the seed leaf + possibly the object page), so a tripped
    // deadline/cancel/budget stops the crawl within one frontier step.
    s->CheckControl();
    SeedLeafView leaf(pool->Read(ref.page));
    MetadataRecordView record = leaf.RecordAt(ref.slot);

    // "The object page is only read from disk if m's page MBR intersects
    // with the query."
    if (record.page_mbr().Intersects(gate_box)) {
      scan(pool->Read(record.object_page()), s);
    }

    // "The neighbor pointers stored in a metadata record M are only followed
    // if M's partition MBR intersects with the query." (kPageMbr reproduces
    // the broken variant of Figures 8/9 for the ablation bench.)
    const Aabb gate = guard == CrawlGuard::kPartitionMbr
                          ? record.partition_mbr()
                          : record.page_mbr();
    if (gate.Intersects(gate_box)) {
      const uint32_t n = record.neighbor_count();
      for (uint32_t i = 0; i < n; ++i) {
        const RecordRef neighbor = record.NeighborAt(i);
        if (s->Insert(neighbor.Key())) {
          s->Push(neighbor);
          if (hint) {
            // The frontier names the exact pages of the next BFS wave: hint
            // the neighbor's seed-leaf page so its I/O overlaps the SIMD
            // gates on the current wave.
            pool->Prefetch(neighbor.page);
            // If that leaf happens to be cached already, its record is free
            // to inspect (Peek charges nothing): chase one level deeper and
            // hint the object page the next wave will scan.
            if (const char* cached = pool->Peek(neighbor.page)) {
              const MetadataRecordView next =
                  SeedLeafView(cached).RecordAt(neighbor.slot);
              if (next.page_mbr().Intersects(gate_box)) {
                pool->Prefetch(next.object_page());
              }
            }
          }
        }
      }
    }
  }
}

namespace {

/// Object-page scan for the crawl: transposes the page's entry MBRs into
/// the scratch SoA lanes, runs `gate(soa, hits)` (one of the vector
/// kernels), then `sink(elements, i)` for every hit — the one place the
/// Assign / Hits / gate / collect pattern lives.
template <typename GateFn, typename SinkFn>
auto SoaScan(GateFn gate, SinkFn sink) {
  return [gate, sink](const char* page, CrawlScratch* s) {
    NodeView elements(page);
    const uint16_t n = elements.count();
    SoaBoxes& soa = s->Soa();
    soa.Assign(page + kNodeHeaderSize, sizeof(RTreeEntry), n);
    uint8_t* hits = s->Hits(soa.padded_count());
    gate(soa, hits);
    for (uint16_t i = 0; i < n; ++i) {
      if (hits[i]) sink(elements, i);
    }
  };
}

}  // namespace

std::optional<RecordRef> FlatIndex::Seed(PageCache* pool,
                                         const Aabb& query) const {
  return SeedWhere(pool, query,
                   [&query](const Aabb& box) { return box.Intersects(query); });
}

void FlatIndex::Crawl(PageCache* pool, const Aabb& query, RecordRef start,
                      std::vector<uint64_t>* out, CrawlGuard guard,
                      CrawlScratch* scratch) const {
  // Object pages pack their RTreeEntry slots contiguously: transpose the
  // page's MBRs into the scratch SoA lanes once, then gate the whole fanout
  // with the vector kernel (see geometry/box_kernels.h).
  CrawlPages(pool, query, start, guard, scratch,
             SoaScan(
                 [&query](const SoaBoxes& soa, uint8_t* hits) {
                   IntersectsSoa(soa, query, hits);
                 },
                 [out](const NodeView& elements, uint16_t i) {
                   out->push_back(elements.IdAt(i));
                 }));
}

void FlatIndex::RangeQuery(PageCache* pool, const Aabb& query,
                           std::vector<uint64_t>* out, CrawlGuard guard) const {
  RangeQuery(pool, query, out, nullptr, guard);
}

void FlatIndex::RangeQuery(PageCache* pool, const Aabb& query,
                           std::vector<uint64_t>* out, CrawlScratch* scratch,
                           CrawlGuard guard) const {
  std::optional<RecordRef> start = SeedWhere(
      pool, query, [&query](const Aabb& box) { return box.Intersects(query); },
      scratch);
  if (!start.has_value()) return;
  Crawl(pool, query, *start, out, guard, scratch);
}

size_t FlatIndex::RangeCount(PageCache* pool, const Aabb& query,
                             CrawlScratch* scratch) const {
  uint64_t count = 0;
  RangeCountInto(pool, query, &count, scratch);
  return static_cast<size_t>(count);
}

void FlatIndex::RangeCountInto(PageCache* pool, const Aabb& query,
                               uint64_t* acc, CrawlScratch* scratch) const {
  if (aggregates_ != nullptr) {
    RangeCountViaAggregates(pool, query, acc, scratch);
    return;
  }
  std::optional<RecordRef> start = SeedWhere(
      pool, query, [&query](const Aabb& box) { return box.Intersects(query); },
      scratch);
  if (!start.has_value()) return;
  // The sink bumps the caller's accumulator directly, so a QueryAbort from
  // a cancellation point leaves the elements counted so far in *acc — the
  // partial-result contract (see core/query_control.h).
  CrawlPages(pool, query, *start, CrawlGuard::kPartitionMbr, scratch,
             SoaScan(
                 [&query](const SoaBoxes& soa, uint8_t* hits) {
                   IntersectsSoa(soa, query, hits);
                 },
                 [acc](const NodeView&, uint16_t) { ++*acc; }));
}

void FlatIndex::RangeCountViaAggregates(PageCache* pool, const Aabb& query,
                                        uint64_t* acc,
                                        CrawlScratch* scratch) const {
  if (empty() || query.IsEmpty()) return;
  struct Frame {
    PageId page;
    bool is_leaf;
  };
  std::vector<uint8_t> hits;  // reused across boundary object pages
  std::optional<CrawlScratch> throwaway;
  CrawlScratch* s = scratch != nullptr ? scratch : &throwaway.emplace();
  const SeedAggregates& agg = *aggregates_;
  // Hierarchical descent like RangeQueryViaSeedScan (which is exact and
  // visits every candidate object page exactly once, so it tallies the same
  // count as the crawl). The difference: a child fully covered by the query
  // contributes its stored subtree count with zero reads below it, and a
  // fully covered record skips its object page — only subtrees straddling
  // the query boundary are gated exactly.
  std::vector<Frame> stack = {{seed_root_, root_is_leaf_}};
  while (!stack.empty()) {
    s->CheckControl();  // cancellation point, once per tree-node pop
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.is_leaf) {
      SeedLeafView leaf(pool->Read(frame.page));
      for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
        MetadataRecordView record = leaf.RecordAt(slot);
        const Aabb page_mbr = record.page_mbr();
        if (!page_mbr.Intersects(query)) continue;
        if (query.Contains(page_mbr)) {
          // Covered record: every element in the object page matches
          // (aggregated builds have no empty element boxes), so the stored
          // count stands in for reading the page.
          if (const AggEntry* e = agg.Find(frame.page, slot)) {
            *acc += e->elements;
            continue;
          }
        }
        s->CheckControl();  // each boundary record reads one object page
        const char* page = pool->Read(record.object_page());
        NodeView elements(page);
        const uint16_t n = elements.count();
        if (hits.size() < n) hits.resize(n);
        IntersectsBatch(page + kNodeHeaderSize, sizeof(RTreeEntry), n, query,
                        hits.data());
        for (uint16_t i = 0; i < n; ++i) *acc += hits[i];
      }
      continue;
    }
    const InternalNodeGate gated(pool->Read(frame.page), query, s,
                                 /*want_covered=*/true);
    const bool children_are_leaves = gated.level() == 1;
    for (uint16_t i = 0; i < gated.count(); ++i) {
      if (!gated.Hit(i)) continue;
      if (gated.Covered(i)) {
        if (const AggEntry* e = agg.Find(frame.page, i)) {
          *acc += e->elements;  // whole subtree inside the query: O(1)
          continue;
        }
      }
      stack.push_back(Frame{gated.ChildAt(i), children_are_leaves});
    }
  }
}

namespace {

/// Page scan testing every element against a custom predicate (the kNN
/// path, whose accept lambda is stateful and records distances).
template <typename Accept>
auto PredicateScan(const Accept& accept, std::vector<uint64_t>* out) {
  return [&accept, out](const char* page, CrawlScratch*) {
    NodeView elements(page);
    for (uint16_t i = 0; i < elements.count(); ++i) {
      const RTreeEntry e = elements.EntryAt(i);
      if (accept(e.box)) out->push_back(e.id);
    }
  };
}

}  // namespace

std::vector<uint64_t> FlatIndex::KnnQuery(PageCache* pool, const Vec3& center,
                                          size_t k) const {
  return KnnQuery(pool, center, k, nullptr);
}

std::vector<uint64_t> FlatIndex::KnnQuery(PageCache* pool, const Vec3& center,
                                          size_t k,
                                          CrawlScratch* scratch) const {
  std::vector<uint64_t> result;
  if (empty() || k == 0) return result;

  // Initial radius guess: the partition holding `center` (or the nearest
  // record's page MBR). Probe with SeedWhere over a tiny gate; fall back to
  // a coarse default when the point lies outside all page MBRs.
  double radius = 0.0;
  {
    const Aabb probe = Aabb::FromPoint(center);
    std::optional<RecordRef> seed = SeedWhere(
        pool, probe,
        [&center](const Aabb& box) { return box.Contains(center); }, scratch);
    if (seed.has_value()) {
      SeedLeafView leaf(pool->Read(seed->page));
      const Aabb page_mbr = leaf.RecordAt(seed->slot).page_mbr();
      radius = 0.5 * page_mbr.Extents().Norm() + 1e-12;
    }
  }

  // Sphere-crawl with doubling radius until at least k elements lie within
  // the ball. The accept predicate records each accepted element's distance
  // in the same order the PredicateScan crawl records its id, so pairing by
  // position is exact. Once k elements are inside radius r, the true k-th nearest is at
  // distance <= r, hence all true top-k were inside the ball: ranking the
  // candidates is exact.
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (radius <= 0.0) radius = 1.0;
    const double radius2 = radius * radius;
    const Aabb gate =
        Aabb::FromCenterHalfExtents(center, Vec3(radius, radius, radius));
    std::vector<double> distances;
    std::vector<uint64_t> ids;
    const auto accept = [&center, radius2, &distances](const Aabb& box) {
      const double d2 = box.DistanceSquaredTo(center);
      if (d2 > radius2) return false;
      distances.push_back(d2);
      return true;
    };
    std::optional<RecordRef> start = SeedWhere(pool, gate, accept, scratch);
    distances.clear();  // seed probes also ran the predicate
    if (start.has_value()) {
      CrawlPages(pool, gate, *start, CrawlGuard::kPartitionMbr, scratch,
                 PredicateScan(accept, &ids));
    }
    // The last attempt returns whatever was found (k may exceed the data
    // set size).
    if (ids.size() >= k || attempt == 63) {
      std::vector<std::pair<double, uint64_t>> candidates(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        candidates[i] = {distances[i], ids[i]};
      }
      std::sort(candidates.begin(), candidates.end());
      const size_t take = std::min(k, candidates.size());
      result.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        result.push_back(candidates[i].second);
      }
      return result;
    }
    radius *= 2.0;
  }
  return result;
}

void FlatIndex::SphereQuery(PageCache* pool, const Vec3& center,
                            double radius, std::vector<uint64_t>* out) const {
  SphereQuery(pool, center, radius, out, nullptr);
}

void FlatIndex::SphereQuery(PageCache* pool, const Vec3& center,
                            double radius, std::vector<uint64_t>* out,
                            CrawlScratch* scratch) const {
  if (radius < 0.0) return;
  const Aabb gate = Aabb::FromCenterHalfExtents(
      center, Vec3(radius, radius, radius));
  const auto accept = [&center, radius](const Aabb& box) {
    return box.IntersectsSphere(center, radius);
  };
  std::optional<RecordRef> start = SeedWhere(pool, gate, accept, scratch);
  if (!start.has_value()) return;
  // The crawl's element gate runs as a batched SoA sphere-distance sweep;
  // SphereGateSoa reproduces IntersectsSphere exactly (same IEEE operation
  // order — see geometry/box_kernels.h), so results match the per-element
  // predicate bit for bit.
  CrawlPages(pool, gate, *start, CrawlGuard::kPartitionMbr, scratch,
             SoaScan(
                 [&center, radius](const SoaBoxes& soa, uint8_t* hits) {
                   SphereGateSoa(soa, center, radius, hits);
                 },
                 [out](const NodeView& elements, uint16_t i) {
                   out->push_back(elements.IdAt(i));
                 }));
}

void FlatIndex::RangeQueryViaSeedScan(PageCache* pool, const Aabb& query,
                                      std::vector<uint64_t>* out,
                                      CrawlScratch* scratch) const {
  if (empty() || query.IsEmpty()) return;
  struct Frame {
    PageId page;
    bool is_leaf;
  };
  std::vector<uint8_t> hits;  // reused across object pages
  // Caller scratch (control-aware, allocation-free across queries) or a
  // throwaway for the internal-node gate buffers.
  std::optional<CrawlScratch> throwaway;
  CrawlScratch* s = scratch != nullptr ? scratch : &throwaway.emplace();
  std::vector<Frame> stack = {{seed_root_, root_is_leaf_}};
  while (!stack.empty()) {
    s->CheckControl();  // cancellation point, once per tree-node pop
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.is_leaf) {
      SeedLeafView leaf(pool->Read(frame.page));
      for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
        MetadataRecordView record = leaf.RecordAt(slot);
        const Aabb page_mbr = record.page_mbr();
        if (!page_mbr.Intersects(query)) continue;
        s->CheckControl();  // each candidate record reads one object page
        const char* page = pool->Read(record.object_page());
        NodeView elements(page);
        const uint16_t n = elements.count();
        if (aggregates_ != nullptr && query.Contains(page_mbr)) {
          // Fully covered record: every element box sits inside the page MBR
          // and thus inside the query, so skip the per-entry gates and copy
          // the whole page's ids. Licensed by has_aggregates(): an aggregated
          // build certified all element boxes non-empty and finite, which is
          // exactly what the gated path's hit test would re-check. The page
          // read itself stays (same bytes, same I/O as the gated path).
          const size_t need = out->size() + n;
          if (out->capacity() < need) {
            out->reserve(std::max(need, out->capacity() * 2));
          }
          for (uint16_t i = 0; i < n; ++i) out->push_back(elements.IdAt(i));
          continue;
        }
        if (hits.size() < n) hits.resize(n);
        IntersectsBatch(page + kNodeHeaderSize, sizeof(RTreeEntry), n, query,
                        hits.data());
        // Amortized reservation keeps vector growth out of the measurement
        // for this ablation baseline. Every object page belongs to exactly
        // one metadata record and every leaf is visited once, so the output
        // needs no de-duplication afterwards.
        size_t matched = 0;
        for (uint16_t i = 0; i < n; ++i) matched += hits[i];
        const size_t need = out->size() + matched;
        if (out->capacity() < need) {
          out->reserve(std::max(need, out->capacity() * 2));
        }
        for (uint16_t i = 0; i < n; ++i) {
          if (hits[i]) out->push_back(elements.IdAt(i));
        }
      }
      continue;
    }
    const InternalNodeGate gated(pool->Read(frame.page), query, s);
    const bool children_are_leaves = gated.level() == 1;
    for (uint16_t i = 0; i < gated.count(); ++i) {
      if (gated.Hit(i)) {
        stack.push_back(Frame{gated.ChildAt(i), children_are_leaves});
      }
    }
  }
}

std::vector<RecordRef> FlatIndex::FindAllCandidateRecords(
    const Aabb& query) const {
  std::vector<RecordRef> result;
  if (empty() || query.IsEmpty()) return result;

  struct Frame {
    PageId page;
    bool is_leaf;
  };
  CrawlScratch scratch;  // buffers for the internal-node gates
  std::vector<Frame> stack = {{seed_root_, root_is_leaf_}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.is_leaf) {
      SeedLeafView leaf(file_->Data(frame.page));
      for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
        if (leaf.RecordAt(slot).page_mbr().Intersects(query)) {
          result.push_back(RecordRef{frame.page, slot});
        }
      }
      continue;
    }
    const InternalNodeGate gated(file_->Data(frame.page), query, &scratch);
    const bool children_are_leaves = gated.level() == 1;
    for (uint16_t i = 0; i < gated.count(); ++i) {
      if (gated.Hit(i)) {
        stack.push_back(Frame{gated.ChildAt(i), children_are_leaves});
      }
    }
  }
  return result;
}

}  // namespace flat
