#include "core/flat_index.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <deque>
#include <stdexcept>
#include <unordered_set>

#include "rtree/node.h"
#include "rtree/pack.h"

namespace flat {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Aabb BoundsOf(const std::vector<RTreeEntry>& entries) {
  Aabb bounds;
  for (const RTreeEntry& e : entries) bounds.ExpandToInclude(e.box);
  return bounds;
}

}  // namespace

FlatIndex FlatIndex::Build(PageFile* file, std::vector<RTreeEntry> elements,
                           BuildStats* out_stats) {
  FlatIndex index;
  index.file_ = file;
  BuildStats stats;
  if (elements.empty()) {
    index.build_stats_ = stats;
    if (out_stats != nullptr) *out_stats = stats;
    return index;
  }

  const uint32_t page_capacity = NodeCapacity(file->page_size());

  // Phase 1: STR partitioning (Algorithm 1, sorting passes).
  auto t_partition = Clock::now();
  const Aabb universe = BoundsOf(elements);
  std::vector<PartitionInfo> partitions =
      StrPartition(&elements, page_capacity, universe);
  stats.partition_seconds = SecondsSince(t_partition);

  // Phase 2: neighborhood computation via the temporary R-tree.
  auto t_neighbor = Clock::now();
  ComputeNeighbors(&partitions);
  stats.neighbor_seconds = SecondsSince(t_neighbor);
  stats.partitions = partitions.size();
  stats.neighbor_pointers = TotalNeighborPointers(partitions);

  // Phase 3: materialize object pages and the seed tree.
  auto t_write = Clock::now();

  // Object pages: one per partition, elements in STR order.
  std::vector<PageId> object_pages(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    const PartitionInfo& p = partitions[i];
    const PageId page = file->Allocate(PageCategory::kObject);
    NodeWriter writer(file->MutableData(page), file->page_size());
    writer.Init(/*level=*/0);
    for (uint32_t j = 0; j < p.count; ++j) {
      writer.Append(elements[p.first + j]);
    }
    object_pages[i] = page;
  }
  stats.object_pages = partitions.size();

  // Assign each metadata record to a seed-leaf page. Records are indexed in
  // the seed tree under their page MBR, and "storing the records in the
  // leafs of the seed tree (an R-Tree) ensures that spatially close records
  // are stored on the same leaf page" (Section V-B.2): we therefore re-tile
  // the records with STR at *leaf granularity* (a 3-D blob of ~a dozen
  // records per leaf) instead of reusing the 1-D object-page run order —
  // this is what keeps the crawl's metadata reads local.
  uint64_t total_footprint = 0;
  for (const PartitionInfo& p : partitions) {
    const size_t footprint = RecordFootprint(p.neighbors.size());
    if (kSeedLeafHeaderSize + footprint > file->page_size()) {
      throw std::runtime_error(
          "FlatIndex::Build: metadata record exceeds page size; increase the "
          "page size or reduce data-set degeneracy (neighbor fan-out)");
    }
    total_footprint += footprint;
  }
  const uint32_t est_records_per_leaf = std::max<uint32_t>(
      1, static_cast<uint32_t>(
             (file->page_size() - kSeedLeafHeaderSize) /
             (total_footprint / partitions.size() + 1)));
  std::vector<RTreeEntry> record_order(partitions.size());
  for (size_t i = 0; i < partitions.size(); ++i) {
    record_order[i] = RTreeEntry{partitions[i].page_mbr, i};
  }
  StrOrder(&record_order, est_records_per_leaf);

  std::vector<std::vector<uint32_t>> leaf_members;
  std::vector<RecordRef> refs(partitions.size());
  size_t used = kSeedLeafHeaderSize;
  for (const RTreeEntry& rec : record_order) {
    const uint32_t pi = static_cast<uint32_t>(rec.id);
    const size_t footprint = RecordFootprint(partitions[pi].neighbors.size());
    if (leaf_members.empty() || used + footprint > file->page_size()) {
      leaf_members.emplace_back();
      used = kSeedLeafHeaderSize;
    }
    refs[pi].slot = static_cast<uint16_t>(leaf_members.back().size());
    refs[pi].page = static_cast<PageId>(leaf_members.size() - 1);  // leaf idx
    leaf_members.back().push_back(pi);
    used += footprint;
    stats.metadata_bytes += kRecordFixedSize +
                            partitions[pi].neighbors.size() * kNeighborRefSize;
  }

  // Allocate leaves, then rewrite the provisional leaf indexes in refs into
  // real PageIds. The packed 4-byte neighbor-pointer format caps leaf page
  // ids at 2^20 and slots at 2^12 (metadata.h); enforce that in release
  // builds too.
  std::vector<PageId> leaf_ids(leaf_members.size());
  for (size_t l = 0; l < leaf_members.size(); ++l) {
    leaf_ids[l] = file->Allocate(PageCategory::kSeedLeaf);
  }
  if (!leaf_ids.empty() && leaf_ids.back() >= kMaxSeedLeafPages) {
    throw std::runtime_error(
        "FlatIndex::Build: seed-leaf PageId exceeds the packed neighbor-"
        "pointer range (2^20 pages); use a larger page size or shard the "
        "data set");
  }
  for (RecordRef& ref : refs) {
    if (ref.slot >= kMaxRecordsPerLeaf) {
      throw std::runtime_error(
          "FlatIndex::Build: record slot exceeds the packed neighbor-"
          "pointer range (2^12 records per leaf)");
    }
    ref.page = leaf_ids[ref.page];
  }

  // Serialize the leaves with fully-resolved neighbor pointers.
  std::vector<RTreeEntry> leaf_entries;
  leaf_entries.reserve(leaf_members.size());
  for (size_t l = 0; l < leaf_members.size(); ++l) {
    std::vector<MetadataRecordDraft> drafts;
    drafts.reserve(leaf_members[l].size());
    Aabb leaf_bounds;
    for (uint32_t pi : leaf_members[l]) {
      const PartitionInfo& p = partitions[pi];
      MetadataRecordDraft draft;
      draft.page_mbr = p.page_mbr;
      draft.partition_mbr = p.partition_mbr;
      draft.object_page = object_pages[pi];
      draft.neighbors.reserve(p.neighbors.size());
      for (uint32_t ni : p.neighbors) draft.neighbors.push_back(refs[ni]);
      drafts.push_back(std::move(draft));
      // The record is indexed in the seed tree under its page MBR key
      // (Section V-B.2).
      leaf_bounds.ExpandToInclude(p.page_mbr);
    }
    WriteSeedLeaf(file->MutableData(leaf_ids[l]), file->page_size(), drafts);
    leaf_entries.push_back(RTreeEntry{leaf_bounds, leaf_ids[l]});
  }
  stats.seed_leaf_pages = leaf_members.size();

  // Internal levels of the seed tree.
  if (leaf_entries.size() == 1) {
    index.seed_root_ = leaf_ids.front();
    index.root_is_leaf_ = true;
    index.seed_height_ = 1;
  } else {
    const size_t pages_before = file->page_count();
    RTree upper = BuildUpperLevels(file, leaf_entries, /*level=*/1,
                                   LevelOrder::kStr,
                                   PageCategory::kSeedInternal);
    index.seed_root_ = upper.root();
    index.root_is_leaf_ = false;
    index.seed_height_ = upper.height();
    stats.seed_internal_pages = file->page_count() - pages_before;
  }
  stats.seed_height = index.seed_height_;
  stats.write_seconds = SecondsSince(t_write);

  index.partition_profiles_.reserve(partitions.size());
  for (const PartitionInfo& p : partitions) {
    index.partition_profiles_.push_back(PartitionProfile{
        p.partition_mbr.Volume(),
        static_cast<uint32_t>(p.neighbors.size())});
  }

  index.build_stats_ = stats;
  if (out_stats != nullptr) *out_stats = stats;
  return index;
}

bool FlatIndex::ProbeRecord(PageCache* pool, const MetadataRecordView& record,
                            const ElementPredicate& accept) const {
  const char* data = pool->Read(record.object_page());
  NodeView elements(data);
  for (uint16_t i = 0; i < elements.count(); ++i) {
    if (accept(elements.BoxAt(i))) return true;
  }
  return false;
}

std::optional<RecordRef> FlatIndex::SeedWhere(
    PageCache* pool, const Aabb& gate, const ElementPredicate& accept) const {
  if (empty() || gate.IsEmpty()) return std::nullopt;

  struct Frame {
    PageId page;
    bool is_leaf;
  };
  std::vector<Frame> stack = {{seed_root_, root_is_leaf_}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.is_leaf) {
      SeedLeafView leaf(pool->Read(frame.page));
      for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
        MetadataRecordView record = leaf.RecordAt(slot);
        if (!record.page_mbr().Intersects(gate)) continue;
        if (ProbeRecord(pool, record, accept)) {
          return RecordRef{frame.page, slot};
        }
      }
      continue;
    }
    NodeView node(pool->Read(frame.page));
    const bool children_are_leaves = node.level() == 1;
    for (int i = node.count() - 1; i >= 0; --i) {
      const RTreeEntry e = node.EntryAt(static_cast<uint16_t>(i));
      if (e.box.Intersects(gate)) {
        stack.push_back(
            Frame{static_cast<PageId>(e.id), children_are_leaves});
      }
    }
  }
  return std::nullopt;
}

void FlatIndex::CrawlWhere(PageCache* pool, const Aabb& gate_box,
                           RecordRef start, std::vector<uint64_t>* out,
                           CrawlGuard guard,
                           const ElementPredicate& accept) const {
  if (empty() || gate_box.IsEmpty() || !start.valid()) return;

  std::deque<RecordRef> queue;            // breadth-first (Algorithm 2)
  std::unordered_set<uint64_t> enqueued;  // "visited" bookkeeping
  queue.push_back(start);
  enqueued.insert(start.Key());

  while (!queue.empty()) {
    const RecordRef ref = queue.front();
    queue.pop_front();

    SeedLeafView leaf(pool->Read(ref.page));
    MetadataRecordView record = leaf.RecordAt(ref.slot);

    // "The object page is only read from disk if m's page MBR intersects
    // with the query."
    if (record.page_mbr().Intersects(gate_box)) {
      NodeView elements(pool->Read(record.object_page()));
      for (uint16_t i = 0; i < elements.count(); ++i) {
        const RTreeEntry e = elements.EntryAt(i);
        if (accept(e.box)) out->push_back(e.id);
      }
    }

    // "The neighbor pointers stored in a metadata record M are only followed
    // if M's partition MBR intersects with the query." (kPageMbr reproduces
    // the broken variant of Figures 8/9 for the ablation bench.)
    const Aabb gate = guard == CrawlGuard::kPartitionMbr
                          ? record.partition_mbr()
                          : record.page_mbr();
    if (gate.Intersects(gate_box)) {
      const uint32_t n = record.neighbor_count();
      for (uint32_t i = 0; i < n; ++i) {
        const RecordRef neighbor = record.NeighborAt(i);
        if (enqueued.insert(neighbor.Key()).second) {
          queue.push_back(neighbor);
        }
      }
    }
  }
}

std::optional<RecordRef> FlatIndex::Seed(PageCache* pool,
                                         const Aabb& query) const {
  return SeedWhere(pool, query,
                   [&query](const Aabb& box) { return box.Intersects(query); });
}

void FlatIndex::Crawl(PageCache* pool, const Aabb& query, RecordRef start,
                      std::vector<uint64_t>* out, CrawlGuard guard) const {
  CrawlWhere(pool, query, start, out, guard,
             [&query](const Aabb& box) { return box.Intersects(query); });
}

void FlatIndex::RangeQuery(PageCache* pool, const Aabb& query,
                           std::vector<uint64_t>* out, CrawlGuard guard) const {
  std::optional<RecordRef> start = Seed(pool, query);
  if (!start.has_value()) return;
  Crawl(pool, query, *start, out, guard);
}

std::vector<uint64_t> FlatIndex::KnnQuery(PageCache* pool, const Vec3& center,
                                          size_t k) const {
  std::vector<uint64_t> result;
  if (empty() || k == 0) return result;

  // Initial radius guess: the partition holding `center` (or the nearest
  // record's page MBR). Probe with SeedWhere over a tiny gate; fall back to
  // a coarse default when the point lies outside all page MBRs.
  double radius = 0.0;
  {
    const Aabb probe = Aabb::FromPoint(center);
    std::optional<RecordRef> seed = SeedWhere(
        pool, probe,
        [&center](const Aabb& box) { return box.Contains(center); });
    if (seed.has_value()) {
      SeedLeafView leaf(pool->Read(seed->page));
      const Aabb page_mbr = leaf.RecordAt(seed->slot).page_mbr();
      radius = 0.5 * page_mbr.Extents().Norm() + 1e-12;
    }
  }

  // Sphere-crawl with doubling radius until at least k elements lie within
  // the ball. The accept predicate records each accepted element's distance
  // in the same order CrawlWhere records its id, so pairing by position is
  // exact. Once k elements are inside radius r, the true k-th nearest is at
  // distance <= r, hence all true top-k were inside the ball: ranking the
  // candidates is exact.
  for (int attempt = 0; attempt < 64; ++attempt) {
    if (radius <= 0.0) radius = 1.0;
    const double radius2 = radius * radius;
    const Aabb gate =
        Aabb::FromCenterHalfExtents(center, Vec3(radius, radius, radius));
    std::vector<double> distances;
    std::vector<uint64_t> ids;
    const ElementPredicate accept = [&center, radius2,
                                     &distances](const Aabb& box) {
      const double d2 = box.DistanceSquaredTo(center);
      if (d2 > radius2) return false;
      distances.push_back(d2);
      return true;
    };
    std::optional<RecordRef> start = SeedWhere(pool, gate, accept);
    distances.clear();  // seed probes also ran the predicate
    if (start.has_value()) {
      CrawlWhere(pool, gate, *start, &ids, CrawlGuard::kPartitionMbr,
                 accept);
    }
    // The last attempt returns whatever was found (k may exceed the data
    // set size).
    if (ids.size() >= k || attempt == 63) {
      std::vector<std::pair<double, uint64_t>> candidates(ids.size());
      for (size_t i = 0; i < ids.size(); ++i) {
        candidates[i] = {distances[i], ids[i]};
      }
      std::sort(candidates.begin(), candidates.end());
      const size_t take = std::min(k, candidates.size());
      result.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        result.push_back(candidates[i].second);
      }
      return result;
    }
    radius *= 2.0;
  }
  return result;
}

void FlatIndex::SphereQuery(PageCache* pool, const Vec3& center,
                            double radius, std::vector<uint64_t>* out) const {
  if (radius < 0.0) return;
  const Aabb gate = Aabb::FromCenterHalfExtents(
      center, Vec3(radius, radius, radius));
  const ElementPredicate accept = [&center, radius](const Aabb& box) {
    return box.IntersectsSphere(center, radius);
  };
  std::optional<RecordRef> start = SeedWhere(pool, gate, accept);
  if (!start.has_value()) return;
  CrawlWhere(pool, gate, *start, out, CrawlGuard::kPartitionMbr, accept);
}

void FlatIndex::RangeQueryViaSeedScan(PageCache* pool, const Aabb& query,
                                      std::vector<uint64_t>* out) const {
  if (empty() || query.IsEmpty()) return;
  struct Frame {
    PageId page;
    bool is_leaf;
  };
  std::vector<Frame> stack = {{seed_root_, root_is_leaf_}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.is_leaf) {
      SeedLeafView leaf(pool->Read(frame.page));
      for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
        MetadataRecordView record = leaf.RecordAt(slot);
        if (!record.page_mbr().Intersects(query)) continue;
        NodeView elements(pool->Read(record.object_page()));
        for (uint16_t i = 0; i < elements.count(); ++i) {
          const RTreeEntry e = elements.EntryAt(i);
          if (e.box.Intersects(query)) out->push_back(e.id);
        }
      }
      continue;
    }
    NodeView node(pool->Read(frame.page));
    const bool children_are_leaves = node.level() == 1;
    for (uint16_t i = 0; i < node.count(); ++i) {
      const RTreeEntry e = node.EntryAt(i);
      if (e.box.Intersects(query)) {
        stack.push_back(Frame{static_cast<PageId>(e.id), children_are_leaves});
      }
    }
  }
}

std::vector<RecordRef> FlatIndex::FindAllCandidateRecords(
    const Aabb& query) const {
  std::vector<RecordRef> result;
  if (empty() || query.IsEmpty()) return result;

  struct Frame {
    PageId page;
    bool is_leaf;
  };
  std::vector<Frame> stack = {{seed_root_, root_is_leaf_}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.is_leaf) {
      SeedLeafView leaf(file_->Data(frame.page));
      for (uint16_t slot = 0; slot < leaf.count(); ++slot) {
        if (leaf.RecordAt(slot).page_mbr().Intersects(query)) {
          result.push_back(RecordRef{frame.page, slot});
        }
      }
      continue;
    }
    NodeView node(file_->Data(frame.page));
    const bool children_are_leaves = node.level() == 1;
    for (uint16_t i = 0; i < node.count(); ++i) {
      const RTreeEntry e = node.EntryAt(i);
      if (e.box.Intersects(query)) {
        stack.push_back(Frame{static_cast<PageId>(e.id), children_are_leaves});
      }
    }
  }
  return result;
}

}  // namespace flat
