#ifndef FLAT_CORE_GRID_JOIN_H_
#define FLAT_CORE_GRID_JOIN_H_

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"

namespace flat {

class ThreadPool;

/// All-pairs box intersection join on a uniform grid: for every box i, fills
/// (*neighbors)[i] with the ascending indices of all *other* boxes whose MBR
/// intersects box i (closed intervals, exactly Aabb::Intersects).
///
/// This is the "Finding Neighbors" engine behind ComputeNeighbors. Boxes are
/// binned into a grid of ~cbrt(n) cells per axis — about one box per cell for
/// STR-tiled inputs — then each box probes the cells it overlaps. No
/// temporary R-tree is built, and the probes run in parallel when `pool` is
/// non-null. The output depends only on `boxes`, never on the thread count.
void GridIntersectionJoin(const std::vector<Aabb>& boxes, ThreadPool* pool,
                          std::vector<std::vector<uint32_t>>* neighbors);

}  // namespace flat

#endif  // FLAT_CORE_GRID_JOIN_H_
