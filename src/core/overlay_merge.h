#ifndef FLAT_CORE_OVERLAY_MERGE_H_
#define FLAT_CORE_OVERLAY_MERGE_H_

#include <cstdint>
#include <vector>

#include "delta/overlay_view.h"
#include "geometry/aabb.h"
#include "geometry/vec3.h"

namespace flat {

class CrawlScratch;

/// Overlay-aware result merging — the algebra that turns a bulkload-only
/// query result into a snapshot-consistent one (delete masking + overlay
/// matches in the canonical ascending-id order). Shared by the engine's
/// overlay dispatch (engine/query_engine.cc) and the snapshot-pinned serial
/// path (shard/sharded_flat_store.cc), so both produce bit-identical
/// results by construction.
///
/// Every AppendOverlay*/CountOverlay* call returns the number of overlay
/// probes performed — live entries gate-tested against the query — which
/// the caller charges to IoStats::RecordOverlayProbes. Probe counts depend
/// only on the snapshot's bucket sizes, never on thread count or execution
/// order, so merged IoStats stay deterministic.
///
/// When `scratch` carries a bound QueryControl, each bucket scan runs one
/// cancellation check up front (CrawlScratch::CheckControl) — overlay scans
/// are in-memory and short, so per-bucket granularity keeps overlay-merged
/// queries responsive to deadlines/cancellation without per-entry cost.

/// Removes every id the overlay masks (deleted or re-inserted ids) from
/// `ids`, preserving the relative order of the survivors. Base results must
/// be masked before overlay matches are appended — live overlay entries are
/// never masked by construction.
void FilterOverlayMasked(const OverlayView& view, std::vector<uint64_t>* ids);

/// Appends the ids of live entries in `bucket` whose box intersects `query`
/// (Aabb::Intersects semantics, batched through the SIMD gate kernels).
/// `scratch` (optional) provides the reusable hit-mask buffer.
uint64_t AppendOverlayRangeMatches(const OverlayView& view, size_t bucket,
                                   const Aabb& query,
                                   std::vector<uint64_t>* out,
                                   CrawlScratch* scratch = nullptr);

/// Counting twin of AppendOverlayRangeMatches: adds the match count to
/// `*count` without materializing ids. Gates the same entries (identical
/// probe count).
uint64_t CountOverlayRangeMatches(const OverlayView& view, size_t bucket,
                                  const Aabb& query, uint64_t* count,
                                  CrawlScratch* scratch = nullptr);

/// Appends the ids of live entries in `bucket` whose box intersects the
/// closed ball around `center` (Aabb::IntersectsSphere semantics — exactly
/// the element filter of FlatIndex::SphereQuery).
uint64_t AppendOverlaySphereMatches(const OverlayView& view, size_t bucket,
                                    const Vec3& center, double radius,
                                    std::vector<uint64_t>* out,
                                    CrawlScratch* scratch = nullptr);

}  // namespace flat

#endif  // FLAT_CORE_OVERLAY_MERGE_H_
