#include "core/grid_join.h"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "parallel/thread_pool.h"

namespace flat {
namespace {

/// Uniform grid over the bounding box of the input. Cells are addressed by
/// integer coordinates; a box maps to the (clamped) range of cells its
/// corners fall into.
struct Grid {
  Vec3 lo;
  double inv[3];
  size_t dims[3];

  size_t CellIndex(size_t ix, size_t iy, size_t iz) const {
    return (iz * dims[1] + iy) * dims[0] + ix;
  }

  size_t CellCoord(double value, int axis) const {
    const double scaled = (value - lo[axis]) * inv[axis];
    if (!(scaled > 0.0)) return 0;  // also catches NaN
    const size_t coord = static_cast<size_t>(scaled);
    return std::min(coord, dims[axis] - 1);
  }

  /// Invokes fn(cell) for every cell the box overlaps.
  template <typename Fn>
  void ForEachCell(const Aabb& box, const Fn& fn) const {
    if (box.IsEmpty()) return;
    size_t cell_lo[3];
    size_t cell_hi[3];
    for (int axis = 0; axis < 3; ++axis) {
      cell_lo[axis] = CellCoord(box.lo()[axis], axis);
      cell_hi[axis] = CellCoord(box.hi()[axis], axis);
    }
    for (size_t iz = cell_lo[2]; iz <= cell_hi[2]; ++iz) {
      for (size_t iy = cell_lo[1]; iy <= cell_hi[1]; ++iy) {
        for (size_t ix = cell_lo[0]; ix <= cell_hi[0]; ++ix) {
          fn(CellIndex(ix, iy, iz));
        }
      }
    }
  }
};

}  // namespace

void GridIntersectionJoin(const std::vector<Aabb>& boxes, ThreadPool* pool,
                          std::vector<std::vector<uint32_t>>* neighbors) {
  const size_t n = boxes.size();
  neighbors->assign(n, {});
  if (n <= 1) return;

  Aabb bounds;
  for (const Aabb& box : boxes) bounds.ExpandToInclude(box);

  Grid grid;
  grid.lo = bounds.lo();
  const size_t per_axis = std::max<size_t>(
      1, static_cast<size_t>(std::cbrt(static_cast<double>(n))));
  const Vec3 extent = bounds.Extents();
  for (int axis = 0; axis < 3; ++axis) {
    grid.dims[axis] = extent[axis] > 0.0 ? per_axis : 1;
    grid.inv[axis] =
        extent[axis] > 0.0
            ? static_cast<double>(grid.dims[axis]) / extent[axis]
            : 0.0;
  }
  const size_t cells = grid.dims[0] * grid.dims[1] * grid.dims[2];

  // CSR cell -> box-index lists via two counting passes (linear, cheap next
  // to the probe phase).
  std::vector<uint32_t> start(cells + 1, 0);
  for (const Aabb& box : boxes) {
    grid.ForEachCell(box, [&](size_t cell) { ++start[cell + 1]; });
  }
  for (size_t cell = 0; cell < cells; ++cell) start[cell + 1] += start[cell];
  std::vector<uint32_t> items(start[cells]);
  std::vector<uint32_t> fill(start.begin(), start.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    grid.ForEachCell(boxes[i], [&](size_t cell) {
      items[fill[cell]++] = static_cast<uint32_t>(i);
    });
  }

  // Probe phase, parallel over boxes. Sorting each candidate list both
  // removes the duplicates a multi-cell box produces and yields the
  // ascending output order directly; the per-worker scratch vector keeps the
  // loop free of per-box allocations after warm-up.
  std::vector<std::vector<uint32_t>> scratch(WorkerCount(pool));
  ParallelFor(pool, n, /*grain=*/0, [&](size_t worker, size_t i) {
    std::vector<uint32_t>& candidates = scratch[worker];
    candidates.clear();
    grid.ForEachCell(boxes[i], [&](size_t cell) {
      candidates.insert(candidates.end(), items.begin() + start[cell],
                        items.begin() + start[cell + 1]);
    });
    std::sort(candidates.begin(), candidates.end());
    std::vector<uint32_t>& out = (*neighbors)[i];
    uint32_t previous = UINT32_MAX;
    for (uint32_t j : candidates) {
      if (j == previous) continue;
      previous = j;
      if (j != i && boxes[i].Intersects(boxes[j])) out.push_back(j);
    }
  });
}

}  // namespace flat
