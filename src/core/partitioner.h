#ifndef FLAT_CORE_PARTITIONER_H_
#define FLAT_CORE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "rtree/entry.h"

namespace flat {

class ThreadPool;

/// One space partition produced by Algorithm 1. Refers to a contiguous range
/// [first, first + count) of the (reordered) element array; that range is
/// exactly what gets packed onto one object page.
struct PartitionInfo {
  /// MBR of the elements on the page ("page MBR").
  Aabb page_mbr;
  /// The space tile stretched to enclose page_mbr ("partition MBR").
  Aabb partition_mbr;
  /// The unstretched tile; tiles jointly cover the universe with no gaps.
  Aabb tile;
  uint32_t first = 0;
  uint32_t count = 0;
  /// Indices of neighboring partitions (partition MBRs intersect); filled by
  /// ComputeNeighbors.
  std::vector<uint32_t> neighbors;
};

/// Segments space into page-sized partitions per Algorithm 1: sort elements
/// on x-center into slabs, each slab on y into runs, each run on z into
/// page-capacity chunks. Tile boundaries are placed midway between adjacent
/// element centers (outermost tiles extend to the universe bounds), so the
/// tiles cover `universe` with no empty space — the first partitioning
/// property of Section V-B. Each partition MBR is then stretched to enclose
/// its page MBR — the second property.
///
/// `elements` is reordered in place; on return, partition i owns
/// elements [first, first+count).
///
/// With a `pool`, the x pass runs as a parallel merge sort and the per-slab
/// y / per-run z passes sort independent ranges in parallel. The sorting
/// passes use a strict total order (EntryCenterOrder), so the element order —
/// and therefore every downstream page — is identical for any thread count.
std::vector<PartitionInfo> StrPartition(std::vector<RTreeEntry>* elements,
                                        uint32_t page_capacity,
                                        const Aabb& universe,
                                        ThreadPool* pool = nullptr);

/// Fills `neighbors` for every partition: two partitions are neighbors iff
/// their partition MBRs intersect (closed intervals, so face-adjacent tiles
/// qualify). The relation is symmetric and irreflexive, and each list is
/// sorted ascending. Implemented as a uniform-grid intersection join
/// (GridIntersectionJoin) instead of Algorithm 1's temporary R-tree: the
/// same relation, no tree construction on the critical path, and partitions
/// probe the grid in parallel when `pool` is given. Output is independent of
/// the thread count.
void ComputeNeighbors(std::vector<PartitionInfo>* partitions,
                      ThreadPool* pool = nullptr);

/// Total number of neighbor pointers across all partitions.
uint64_t TotalNeighborPointers(const std::vector<PartitionInfo>& partitions);

}  // namespace flat

#endif  // FLAT_CORE_PARTITIONER_H_
