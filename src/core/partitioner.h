#ifndef FLAT_CORE_PARTITIONER_H_
#define FLAT_CORE_PARTITIONER_H_

#include <cstdint>
#include <vector>

#include "geometry/aabb.h"
#include "rtree/entry.h"

namespace flat {

/// One space partition produced by Algorithm 1. Refers to a contiguous range
/// [first, first + count) of the (reordered) element array; that range is
/// exactly what gets packed onto one object page.
struct PartitionInfo {
  /// MBR of the elements on the page ("page MBR").
  Aabb page_mbr;
  /// The space tile stretched to enclose page_mbr ("partition MBR").
  Aabb partition_mbr;
  /// The unstretched tile; tiles jointly cover the universe with no gaps.
  Aabb tile;
  uint32_t first = 0;
  uint32_t count = 0;
  /// Indices of neighboring partitions (partition MBRs intersect); filled by
  /// ComputeNeighbors.
  std::vector<uint32_t> neighbors;
};

/// Segments space into page-sized partitions per Algorithm 1: sort elements
/// on x-center into slabs, each slab on y into runs, each run on z into
/// page-capacity chunks. Tile boundaries are placed midway between adjacent
/// element centers (outermost tiles extend to the universe bounds), so the
/// tiles cover `universe` with no empty space — the first partitioning
/// property of Section V-B. Each partition MBR is then stretched to enclose
/// its page MBR — the second property.
///
/// `elements` is reordered in place; on return, partition i owns
/// elements [first, first+count).
std::vector<PartitionInfo> StrPartition(std::vector<RTreeEntry>* elements,
                                        uint32_t page_capacity,
                                        const Aabb& universe);

/// Fills `neighbors` for every partition: two partitions are neighbors iff
/// their partition MBRs intersect (closed intervals, so face-adjacent tiles
/// qualify). Uses a temporary in-memory R-tree exactly as Algorithm 1
/// prescribes. The relation is symmetric and irreflexive.
void ComputeNeighbors(std::vector<PartitionInfo>* partitions);

/// Total number of neighbor pointers across all partitions.
uint64_t TotalNeighborPointers(const std::vector<PartitionInfo>& partitions);

}  // namespace flat

#endif  // FLAT_CORE_PARTITIONER_H_
