#include "core/metadata.h"

#include <cassert>

namespace flat {

void WriteSeedLeaf(char* data, uint32_t page_size,
                   const std::vector<MetadataRecordDraft>& records) {
  assert(records.size() < kMaxRecordsPerLeaf);
  const uint16_t count = static_cast<uint16_t>(records.size());
  std::memcpy(data, &count, sizeof(count));

  size_t offset = kSeedLeafHeaderSize + records.size() * kSlotDirEntrySize;
  for (size_t slot = 0; slot < records.size(); ++slot) {
    const MetadataRecordDraft& record = records[slot];
    const uint16_t off16 = static_cast<uint16_t>(offset);
    std::memcpy(data + kSeedLeafHeaderSize + slot * 2, &off16, sizeof(off16));

    char* p = data + offset;
    const PackedAabb page_mbr = PackedAabb::FromAabb(record.page_mbr);
    const PackedAabb partition_mbr =
        PackedAabb::FromAabb(record.partition_mbr);
    std::memcpy(p, &page_mbr, sizeof(page_mbr));
    std::memcpy(p + sizeof(PackedAabb), &partition_mbr,
                sizeof(partition_mbr));
    const uint32_t object_page = record.object_page;
    std::memcpy(p + 2 * sizeof(PackedAabb), &object_page,
                sizeof(object_page));
    const uint32_t neighbor_count =
        static_cast<uint32_t>(record.neighbors.size());
    std::memcpy(p + 2 * sizeof(PackedAabb) + 4, &neighbor_count,
                sizeof(neighbor_count));
    char* refs = p + kRecordFixedSize;
    for (size_t i = 0; i < record.neighbors.size(); ++i) {
      assert(record.neighbors[i].page < kMaxSeedLeafPages);
      assert(record.neighbors[i].slot < kMaxRecordsPerLeaf);
      const uint32_t packed = PackNeighborRef(record.neighbors[i]);
      std::memcpy(refs + i * kNeighborRefSize, &packed, sizeof(packed));
    }
    offset += kRecordFixedSize + record.neighbors.size() * kNeighborRefSize;
    assert(offset <= page_size);
  }
  (void)page_size;
}

}  // namespace flat
