#include "core/overlay_merge.h"

#include <algorithm>

#include "core/crawl_scratch.h"

namespace flat {
namespace {

// Gate every entry of `bucket` against `query` with the batched kernel and
// hand the hits to `emit(const RTreeEntry&)`. Returns the probe count (=
// bucket size: every live entry is gate-tested exactly once).
template <typename Emit>
uint64_t GateBucket(const std::vector<RTreeEntry>& bucket, const Aabb& query,
                    CrawlScratch* scratch, const Emit& emit) {
  if (bucket.empty()) return 0;
  std::vector<uint8_t> local_hits;
  uint8_t* hits;
  if (scratch != nullptr) {
    scratch->CheckControl();  // cancellation point, once per bucket scan
    hits = scratch->Hits(bucket.size());
  } else {
    local_hits.resize(bucket.size());
    hits = local_hits.data();
  }
  IntersectsBatch(reinterpret_cast<const char*>(bucket.data()),
                  sizeof(RTreeEntry), bucket.size(), query, hits);
  for (size_t i = 0; i < bucket.size(); ++i) {
    if (hits[i]) emit(bucket[i]);
  }
  return bucket.size();
}

}  // namespace

void FilterOverlayMasked(const OverlayView& view, std::vector<uint64_t>* ids) {
  if (view.touched_count() == 0 || ids->empty()) return;
  ids->erase(std::remove_if(ids->begin(), ids->end(),
                            [&view](uint64_t id) { return view.IsTouched(id); }),
             ids->end());
}

uint64_t AppendOverlayRangeMatches(const OverlayView& view, size_t bucket,
                                   const Aabb& query,
                                   std::vector<uint64_t>* out,
                                   CrawlScratch* scratch) {
  return GateBucket(view.bucket(bucket), query, scratch,
                    [out](const RTreeEntry& e) { out->push_back(e.id); });
}

uint64_t CountOverlayRangeMatches(const OverlayView& view, size_t bucket,
                                  const Aabb& query, uint64_t* count,
                                  CrawlScratch* scratch) {
  return GateBucket(view.bucket(bucket), query, scratch,
                    [count](const RTreeEntry&) { ++*count; });
}

uint64_t AppendOverlaySphereMatches(const OverlayView& view, size_t bucket,
                                    const Vec3& center, double radius,
                                    std::vector<uint64_t>* out,
                                    CrawlScratch* scratch) {
  if (scratch != nullptr) scratch->CheckControl();
  const std::vector<RTreeEntry>& entries = view.bucket(bucket);
  for (const RTreeEntry& e : entries) {
    if (e.box.IntersectsSphere(center, radius)) out->push_back(e.id);
  }
  return entries.size();
}

}  // namespace flat
