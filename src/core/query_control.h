#ifndef FLAT_CORE_QUERY_CONTROL_H_
#define FLAT_CORE_QUERY_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>

#include "storage/io_stats.h"

namespace flat {

/// Typed outcome of one query execution — the fail-soft error channel.
/// Every QueryResult carries one; kOk is the default and the only value a
/// query without a QueryControl and without injected faults can produce, so
/// existing callers that never look at it see today's behavior unchanged.
///
/// Partial-result semantics: any non-kOk status means the query stopped at
/// a cancellation point, and the result holds exactly what was gathered up
/// to that point — for id-producing queries the ids matched so far, for
/// kRangeCount the tally accumulated so far (a lower bound on the exact
/// count, since execution only ever adds matches). Partials are valid,
/// never-torn prefixes of the exact answer under the traversal order, not
/// random subsets; callers that need exactness must check for kOk rather
/// than for emptiness, because a partial count/id set is indistinguishable
/// from a complete one by value alone.
enum class QueryStatus : uint8_t {
  kOk = 0,
  /// The control's deadline passed before the query finished.
  kDeadlineExceeded,
  /// The control's cancel token was set, or a sibling sub-query of the same
  /// QueryGroup failed and cancelled the group.
  kCancelled,
  /// The storage backend failed unrecoverably (pread error after retries
  /// were exhausted); QueryResult::error carries the backend's message.
  kIoError,
  /// Shed by admission control before execution started
  /// (QueryEngine::Options::max_queued_queries).
  kRejected,
  /// The control's max_page_reads I/O budget was exhausted.
  kBudgetExceeded,
};

inline constexpr int kNumQueryStatuses = 6;

inline const char* QueryStatusName(QueryStatus status) {
  switch (status) {
    case QueryStatus::kOk:
      return "kOk";
    case QueryStatus::kDeadlineExceeded:
      return "kDeadlineExceeded";
    case QueryStatus::kCancelled:
      return "kCancelled";
    case QueryStatus::kIoError:
      return "kIoError";
    case QueryStatus::kRejected:
      return "kRejected";
    case QueryStatus::kBudgetExceeded:
      return "kBudgetExceeded";
  }
  return "kUnknown";
}

/// Cancellation fan-in for the sub-queries one original query scatters into
/// (ShardedFlatStore): the first sub-query to fail records its status and
/// flips the group's cancelled flag, which every sibling observes at its
/// next cancellation point — one shard timing out or erroring cancels the
/// whole scattered query promptly instead of letting the other shards run
/// to completion. All members are safe to call from any thread.
class QueryGroup {
 public:
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// First non-OK status wins; later calls keep the original verdict but
  /// still (re-)assert the cancelled flag.
  void SignalFailure(QueryStatus status) {
    uint8_t expected = static_cast<uint8_t>(QueryStatus::kOk);
    status_.compare_exchange_strong(expected, static_cast<uint8_t>(status),
                                    std::memory_order_acq_rel,
                                    std::memory_order_acquire);
    cancelled_.store(true, std::memory_order_release);
  }

  QueryStatus status() const {
    return static_cast<QueryStatus>(status_.load(std::memory_order_acquire));
  }

 private:
  std::atomic<uint8_t> status_{static_cast<uint8_t>(QueryStatus::kOk)};
  std::atomic<bool> cancelled_{false};
};

/// Per-query fail-soft execution controls. Plain value type; attach one to a
/// Query via `Query::control` (the pointed-to control — and its cancel
/// token/group — must outlive the batch). All limits compose; the first one
/// tripped decides the status. A default-constructed control never trips.
struct QueryControl {
  /// Absolute deadline; time_point::max() (the default) means none. Checked
  /// at every cancellation point (one steady_clock read per frontier pop),
  /// so a query stops within one BFS step of the deadline passing.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();

  /// External cancel token: set it (from any thread) to stop the query at
  /// its next cancellation point with kCancelled. Null means none.
  const std::atomic<bool>* cancel = nullptr;

  /// I/O budget: the query aborts with kBudgetExceeded at the first
  /// cancellation point after its own IoStats exceed this many page reads.
  /// 0 (default) = unlimited. In a sharded scatter the budget applies to
  /// each sub-query independently (sub-queries can't observe each other's
  /// reads without serializing on shared state).
  uint64_t max_page_reads = 0;

  /// Sub-query fan-in; set by ShardedFlatStore's scatter, null for direct
  /// engine/index callers (who may also set one to tie queries together).
  QueryGroup* group = nullptr;

  /// Convenience: a control whose deadline is `timeout` from now.
  static QueryControl WithTimeout(std::chrono::steady_clock::duration timeout) {
    QueryControl control;
    control.deadline = std::chrono::steady_clock::now() + timeout;
    return control;
  }

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
};

/// Internal control-flow exception carrying the typed status from a
/// cancellation point (deep in the seed/crawl loops) to the dispatch layer,
/// which converts it into QueryResult::status. Deliberately derived from
/// std::exception directly — the dispatch layer's std::exception handler
/// maps *runtime* failures to kIoError, and catches QueryAbort first.
class QueryAbort : public std::exception {
 public:
  explicit QueryAbort(QueryStatus status) : status_(status) {}
  QueryStatus status() const { return status_; }
  const char* what() const noexcept override {
    return QueryStatusName(status_);
  }

 private:
  QueryStatus status_;
};

/// The shared cancellation-point predicate: throws QueryAbort when any of
/// `control`'s limits tripped. `io` is the stats object the executing
/// query's page reads are charged to (for the budget check); may be null
/// when no accounting exists (budget then never trips). Check order: user
/// cancel, group cancel, deadline, budget — the deadline clock read is
/// skipped entirely when no deadline is set.
inline void ThrowIfStopped(const QueryControl& control, const IoStats* io) {
  if (control.cancel != nullptr &&
      control.cancel->load(std::memory_order_acquire)) {
    throw QueryAbort(QueryStatus::kCancelled);
  }
  if (control.group != nullptr && control.group->cancelled()) {
    throw QueryAbort(QueryStatus::kCancelled);
  }
  if (control.has_deadline() &&
      std::chrono::steady_clock::now() >= control.deadline) {
    throw QueryAbort(QueryStatus::kDeadlineExceeded);
  }
  if (control.max_page_reads != 0 && io != nullptr &&
      io->TotalReads() > control.max_page_reads) {
    throw QueryAbort(QueryStatus::kBudgetExceeded);
  }
}

}  // namespace flat

#endif  // FLAT_CORE_QUERY_CONTROL_H_
